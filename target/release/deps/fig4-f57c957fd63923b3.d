/root/repo/target/release/deps/fig4-f57c957fd63923b3.d: crates/bench/src/bin/fig4.rs

/root/repo/target/release/deps/fig4-f57c957fd63923b3: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
