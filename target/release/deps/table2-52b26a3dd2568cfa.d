/root/repo/target/release/deps/table2-52b26a3dd2568cfa.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-52b26a3dd2568cfa: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
