/root/repo/target/release/deps/hmm_bench-936057359de3614a.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libhmm_bench-936057359de3614a.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libhmm_bench-936057359de3614a.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
