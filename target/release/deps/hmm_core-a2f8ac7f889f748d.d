/root/repo/target/release/deps/hmm_core-a2f8ac7f889f748d.d: crates/core/src/lib.rs crates/core/src/machine.rs crates/core/src/presets.rs

/root/repo/target/release/deps/libhmm_core-a2f8ac7f889f748d.rlib: crates/core/src/lib.rs crates/core/src/machine.rs crates/core/src/presets.rs

/root/repo/target/release/deps/libhmm_core-a2f8ac7f889f748d.rmeta: crates/core/src/lib.rs crates/core/src/machine.rs crates/core/src/presets.rs

crates/core/src/lib.rs:
crates/core/src/machine.rs:
crates/core/src/presets.rs:
