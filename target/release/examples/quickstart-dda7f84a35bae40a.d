/root/repo/target/release/examples/quickstart-dda7f84a35bae40a.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-dda7f84a35bae40a: examples/quickstart.rs

examples/quickstart.rs:
