/root/repo/target/release/examples/bank_conflicts-f593bfaeeb4986db.d: examples/bank_conflicts.rs

/root/repo/target/release/examples/bank_conflicts-f593bfaeeb4986db: examples/bank_conflicts.rs

examples/bank_conflicts.rs:
