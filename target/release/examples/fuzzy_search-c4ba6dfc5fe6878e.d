/root/repo/target/release/examples/fuzzy_search-c4ba6dfc5fe6878e.d: examples/fuzzy_search.rs

/root/repo/target/release/examples/fuzzy_search-c4ba6dfc5fe6878e: examples/fuzzy_search.rs

examples/fuzzy_search.rs:
