/root/repo/target/release/examples/gtx580-d3e157f159c5a3f7.d: examples/gtx580.rs

/root/repo/target/release/examples/gtx580-d3e157f159c5a3f7: examples/gtx580.rs

examples/gtx580.rs:
