/root/repo/target/release/examples/fir_filter-0c6c6ee646008ec1.d: examples/fir_filter.rs

/root/repo/target/release/examples/fir_filter-0c6c6ee646008ec1: examples/fir_filter.rs

examples/fir_filter.rs:
