/root/repo/target/release/examples/custom_kernel-eb21e328f285d7da.d: examples/custom_kernel.rs

/root/repo/target/release/examples/custom_kernel-eb21e328f285d7da: examples/custom_kernel.rs

examples/custom_kernel.rs:
