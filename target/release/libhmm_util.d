/root/repo/target/release/libhmm_util.rlib: /root/repo/crates/util/src/bench.rs /root/repo/crates/util/src/json.rs /root/repo/crates/util/src/lib.rs /root/repo/crates/util/src/rng.rs
