//! Integration: Table II — measured times respect every lower bound and
//! sit within a constant of it (observed time-optimality).
//!
//! For each algorithm and sweep point we check
//! `LB.max_term() ≤ measured ≤ C · LB.total()`: the left inequality
//! validates the bound derivations against the executable model, the
//! right one is the paper's optimality theorem made empirical.

use hmm_algorithms::convolution::hmm::shared_words;
use hmm_algorithms::convolution::{run_conv_dmm_umm, run_conv_hmm};
use hmm_algorithms::sum::{run_sum_dmm_umm, run_sum_hmm};
use hmm_core::Machine;
use hmm_pram::algorithms as pram_algos;
use hmm_theory::{table2, Params};
use hmm_workloads::random_words;

fn params(n: usize, k: usize, p: usize, w: usize, l: usize, d: usize) -> Params {
    Params { n, k, p, w, l, d }
}

/// The optimality constant we certify across all sweeps. The paper proves
/// O(1); our engine's measured constant stays well under this.
const C: f64 = 30.0;

#[test]
fn pram_sum_within_lower_bound_envelope() {
    for &(n, p) in &[(1024usize, 32usize), (4096, 256), (256, 256)] {
        let input = random_words(n, 9, 50);
        let (_, rep) = pram_algos::run_sum(&input, p).unwrap();
        let lb = table2::sum_pram(n, p);
        let t = rep.time as f64;
        assert!(t >= lb.max_term(), "n={n} p={p}: {t} < {}", lb.max_term());
        assert!(t <= C * lb.total(), "n={n} p={p}: {t} > C*{}", lb.total());
    }
}

#[test]
fn dmm_umm_sum_within_lower_bound_envelope() {
    for &(n, p, l) in &[
        (1usize << 12, 256usize, 16usize),
        (1 << 14, 1024, 64),
        (1 << 10, 64, 4),
    ] {
        let w = 16;
        let input = vec![1; n];
        let mut m = Machine::umm(w, l, n);
        let t = run_sum_dmm_umm(&mut m, &input, p).unwrap().report.time as f64;
        let lb = table2::sum_dmm_umm(params(n, 1, p, w, l, 1));
        assert!(t >= lb.max_term(), "{t} < LB {}", lb.max_term());
        assert!(t <= C * lb.total(), "{t} > C * {}", lb.total());
    }
}

#[test]
fn hmm_sum_within_lower_bound_envelope() {
    for &(n, p, l, d) in &[
        (1usize << 12, 256usize, 16usize, 4usize),
        (1 << 14, 2048, 128, 8),
        (1 << 12, 512, 64, 16),
    ] {
        let w = 16;
        let input = vec![1; n];
        let mut m = Machine::hmm(d, w, l, n + 32, (p / d).next_power_of_two().max(64));
        let t = run_sum_hmm(&mut m, &input, p).unwrap().report.time as f64;
        let lb = table2::sum_hmm(params(n, 1, p, w, l, d));
        assert!(t >= lb.max_term(), "{t} < LB {}", lb.max_term());
        assert!(t <= C * lb.total(), "{t} > C * {}", lb.total());
    }
}

#[test]
fn dmm_umm_convolution_within_lower_bound_envelope() {
    for &(n, k, p, l) in &[
        (1usize << 10, 8usize, 256usize, 16usize),
        (1 << 11, 16, 1024, 64),
    ] {
        let w = 16;
        let a = random_words(k, 5, 10);
        let b = random_words(n + k - 1, 6, 10);
        let mut m = Machine::umm(w, l, 2 * (n + 2 * k));
        let t = run_conv_dmm_umm(&mut m, &a, &b, p).unwrap().report.time as f64;
        let lb = table2::conv_dmm_umm(params(n, k, p.min(n), w, l, 1));
        assert!(t >= lb.max_term(), "{t} < LB {}", lb.max_term());
        assert!(t <= C * lb.total(), "{t} > C * {}", lb.total());
    }
}

#[test]
fn hmm_convolution_within_lower_bound_envelope() {
    for &(n, k, p, l, d) in &[
        (1usize << 10, 8usize, 256usize, 16usize, 4usize),
        (1 << 11, 16, 512, 64, 8),
        (1 << 10, 32, 512, 32, 8),
    ] {
        let w = 16;
        let a = random_words(k, 7, 10);
        let b = random_words(n + k - 1, 8, 10);
        let m_slice = n.div_ceil(d);
        let mut m = Machine::hmm(d, w, l, 2 * (n + 2 * k), shared_words(m_slice, k) + 8);
        let t = run_conv_hmm(&mut m, &a, &b, p).unwrap().report.time as f64;
        let lb = table2::conv_hmm(params(n, k, p, w, l, d));
        assert!(t >= lb.max_term(), "{t} < LB {}", lb.max_term());
        assert!(t <= C * lb.total(), "{t} > C * {}", lb.total());
    }
}
