//! Integration: measured simulation times match the Θ-shapes of Table I.
//!
//! For each algorithm we sweep machine and problem parameters, measure
//! the simulated time units, and envelope-fit them against the matching
//! closed form from `hmm-theory`. A bounded spread across the sweep means
//! the formula captures the measured asymptotics — the reproduction
//! criterion for Table I.

use hmm_algorithms::convolution::hmm::shared_words;
use hmm_algorithms::convolution::{run_conv_dmm_umm, run_conv_hmm};
use hmm_algorithms::sum::{run_sum_dmm_umm, run_sum_hmm};
use hmm_core::Machine;
use hmm_pram::algorithms as pram_algos;
use hmm_theory::{envelope, table1, Params};
use hmm_workloads::random_words;

fn params(n: usize, k: usize, p: usize, w: usize, l: usize, d: usize) -> Params {
    Params { n, k, p, w, l, d }
}

#[test]
fn pram_sum_matches_lemma3_shape() {
    let mut pairs = Vec::new();
    for &n in &[256usize, 1024, 4096] {
        for &p in &[8usize, 64, 256] {
            let input = random_words(n, n as u64, 100);
            let (_, rep) = pram_algos::run_sum(&input, p).unwrap();
            pairs.push((rep.time as f64, table1::sum_pram(n, p)));
        }
    }
    let fit = envelope::fit(&pairs);
    assert!(
        fit.matches_within(8.0),
        "PRAM sum spread {:.2} (constant {:.2})",
        fit.spread,
        fit.constant
    );
}

#[test]
fn dmm_umm_sum_matches_lemma5_shape() {
    let mut pairs = Vec::new();
    for &n in &[1usize << 10, 1 << 12, 1 << 14] {
        for &p in &[64usize, 256, 1024] {
            for &l in &[4usize, 32, 128] {
                let w = 16;
                let input = vec![1; n];
                let mut m = Machine::umm(w, l, n);
                let run = run_sum_dmm_umm(&mut m, &input, p).unwrap();
                pairs.push((
                    run.report.time as f64,
                    table1::sum_dmm_umm(params(n, 1, p, w, l, 1)),
                ));
            }
        }
    }
    let fit = envelope::fit(&pairs);
    assert!(
        fit.matches_within(10.0),
        "Lemma 5 spread {:.2} (constant {:.2}, ratios {:.2}..{:.2})",
        fit.spread,
        fit.constant,
        fit.min_ratio,
        fit.max_ratio
    );
}

#[test]
fn hmm_sum_matches_theorem7_shape() {
    let mut pairs = Vec::new();
    for &n in &[1usize << 12, 1 << 14] {
        for &(d, p) in &[(4usize, 256usize), (8, 512), (8, 2048)] {
            for &l in &[4usize, 32, 128] {
                let w = 16;
                let input = vec![1; n];
                let mut m = Machine::hmm(d, w, l, n + 16, (p / d).next_power_of_two().max(64));
                let run = run_sum_hmm(&mut m, &input, p).unwrap();
                pairs.push((
                    run.report.time as f64,
                    table1::sum_hmm(params(n, 1, p, w, l, d)),
                ));
            }
        }
    }
    let fit = envelope::fit(&pairs);
    assert!(
        fit.matches_within(10.0),
        "Theorem 7 spread {:.2} (constant {:.2}, ratios {:.2}..{:.2})",
        fit.spread,
        fit.constant,
        fit.min_ratio,
        fit.max_ratio
    );
}

#[test]
fn dmm_umm_convolution_matches_theorem8_shape() {
    let mut pairs = Vec::new();
    for &(n, k) in &[(1usize << 10, 8usize), (1 << 12, 16), (1 << 10, 32)] {
        for &p in &[64usize, 256, 1024] {
            for &l in &[4usize, 64] {
                let w = 16;
                let a = random_words(k, 1, 10);
                let b = random_words(n + k - 1, 2, 10);
                let mut m = Machine::umm(w, l, 2 * (n + 2 * k));
                let run = run_conv_dmm_umm(&mut m, &a, &b, p).unwrap();
                pairs.push((
                    run.report.time as f64,
                    table1::conv_dmm_umm(params(n, k, p.min(n), w, l, 1)),
                ));
            }
        }
    }
    let fit = envelope::fit(&pairs);
    assert!(
        fit.matches_within(12.0),
        "Theorem 8 spread {:.2} (constant {:.2}, ratios {:.2}..{:.2})",
        fit.spread,
        fit.constant,
        fit.min_ratio,
        fit.max_ratio
    );
}

#[test]
fn hmm_convolution_matches_theorem9_shape() {
    let mut pairs = Vec::new();
    for &(n, k) in &[(1usize << 10, 8usize), (1 << 12, 16), (1 << 10, 32)] {
        for &(d, p) in &[(4usize, 256usize), (8, 512)] {
            for &l in &[4usize, 64] {
                let w = 16;
                let a = random_words(k, 3, 10);
                let b = random_words(n + k - 1, 4, 10);
                let m_slice = n.div_ceil(d);
                let mut m = Machine::hmm(d, w, l, 2 * (n + 2 * k), shared_words(m_slice, k) + 8);
                let run = run_conv_hmm(&mut m, &a, &b, p).unwrap();
                pairs.push((
                    run.report.time as f64,
                    table1::conv_hmm(params(n, k, p, w, l, d)),
                ));
            }
        }
    }
    let fit = envelope::fit(&pairs);
    assert!(
        fit.matches_within(12.0),
        "Theorem 9 spread {:.2} (constant {:.2}, ratios {:.2}..{:.2})",
        fit.spread,
        fit.constant,
        fit.min_ratio,
        fit.max_ratio
    );
}

#[test]
fn contiguous_access_matches_lemma1_shape() {
    use hmm_algorithms::contiguous::{run_access, AccessMode};
    let mut pairs = Vec::new();
    for &n in &[1usize << 10, 1 << 13] {
        for &p in &[16usize, 128, 1024] {
            for &l in &[2usize, 32, 256] {
                let w = 16;
                let mut m = Machine::umm(w, l, n);
                let rep = run_access(&mut m, n, p, AccessMode::Read).unwrap();
                pairs.push((rep.time as f64, table1::contiguous(n, p, w, l)));
            }
        }
    }
    let fit = envelope::fit(&pairs);
    assert!(
        fit.matches_within(8.0),
        "Lemma 1 spread {:.2} (band {:.2}..{:.2})",
        fit.spread,
        fit.min_ratio,
        fit.max_ratio
    );
}
