//! Differential test: the parallel engine must be **bit-identical** to
//! the sequential oracle.
//!
//! Every paper kernel (sum, convolution, the Figure 1 patterns,
//! transpose, matmul, bitonic sort) runs under the sequential driver and
//! under the threaded driver at several worker counts, across machines
//! with d ∈ {1, 2, 4, 16} DMMs. The full [`SimReport`] (cycle counts,
//! per-memory conflict statistics, per-DMM breakdowns, race counters),
//! the dynamic race log, and the final global memory must match exactly.

use hmm_algorithms::convolution::hmm::shared_words;
use hmm_algorithms::convolution::run_conv_hmm;
use hmm_algorithms::matmul::{matmul_shared_words, run_matmul_hmm};
use hmm_algorithms::patterns::{run_figure1, run_transpose, Figure1};
use hmm_algorithms::sort::run_sort_hmm;
use hmm_algorithms::sum::run_sum_hmm;
use hmm_core::{Machine, Parallelism};
use hmm_machine::{DynamicRace, SimReport, Word};
use hmm_workloads::random_words;

const W: usize = 4;
const L: usize = 16;
const DMM_COUNTS: [usize; 4] = [1, 2, 4, 16];
const WORKER_COUNTS: [usize; 3] = [2, 4, 8];

/// Everything observable about one simulation run.
#[derive(Debug, PartialEq)]
struct Observed {
    report: SimReport,
    races: Vec<DynamicRace>,
    global: Vec<Word>,
}

fn observe(mut m: Machine, run: impl FnOnce(&mut Machine) -> SimReport) -> Observed {
    let report = run(&mut m);
    Observed {
        races: m.engine_mut().take_races(),
        global: m.global().to_vec(),
        report,
    }
}

/// Run `launch` at every DMM count, sequentially and at several worker
/// counts, and require identical observations throughout.
fn assert_engines_agree(name: &str, launch: impl Fn(usize, Parallelism) -> Observed) {
    for &d in &DMM_COUNTS {
        let oracle = launch(d, Parallelism::Sequential);
        let repeat = launch(d, Parallelism::Sequential);
        assert_eq!(
            repeat, oracle,
            "{name}: sequential run not repeatable (d={d})"
        );
        for &t in &WORKER_COUNTS {
            let par = launch(d, Parallelism::Threads(t));
            assert_eq!(
                par, oracle,
                "{name}: parallel engine diverged (d={d}, threads={t})"
            );
        }
    }
}

#[test]
fn sum_is_engine_invariant() {
    let input = random_words(512, 11, 1000);
    assert_engines_agree("sum", |d, par| {
        let p = 16 * d;
        let shared = (p / d).next_power_of_two().max(8);
        let m = Machine::hmm(d, W, L, 512 + 2 * d.next_power_of_two() + 8, shared)
            .with_parallelism(par);
        observe(m, |m| run_sum_hmm(m, &input, p).unwrap().report)
    });
}

#[test]
fn convolution_is_engine_invariant() {
    let (n, k) = (256usize, 8usize);
    let a = random_words(k, 3, 50);
    let b = random_words(n + k - 1, 4, 50);
    assert_engines_agree("conv", |d, par| {
        let p = 8 * d;
        let shared = shared_words(n.div_ceil(d), k) + 8;
        let m = Machine::hmm(d, W, L, 2 * (n + 2 * k), shared).with_parallelism(par);
        observe(m, |m| run_conv_hmm(m, &a, &b, p).unwrap().report)
    });
}

#[test]
fn figure1_patterns_are_engine_invariant() {
    let side = 16usize;
    for pattern in Figure1::ALL {
        assert_engines_agree(pattern.name(), |d, par| {
            let m = Machine::hmm(d, W, L, side * side, 16).with_parallelism(par);
            // p = m keeps every pattern in bounds (column reads A[i*m]).
            observe(m, |m| run_figure1(m, pattern, side, side).unwrap())
        });
    }
}

#[test]
fn transpose_is_engine_invariant() {
    let side = 8usize;
    let a = random_words(side * side, 7, 100);
    assert_engines_agree("transpose", |d, par| {
        let mut m = Machine::hmm(d, W, L, 2 * side * side, 16).with_parallelism(par);
        m.load_global(0, &a);
        observe(m, |m| run_transpose(m, 0, side * side, side).unwrap())
    });
}

#[test]
fn matmul_is_engine_invariant() {
    let (side, tw, p) = (8usize, 4usize, 16usize);
    let a = random_words(side * side, 21, 10);
    let b = random_words(side * side, 22, 10);
    assert_engines_agree("matmul", |d, par| {
        let shared = matmul_shared_words(side, d, tw);
        let m = Machine::hmm(d, W, L, 3 * side * side, shared).with_parallelism(par);
        observe(m, |m| {
            run_matmul_hmm(m, &a, &b, side, tw, p).unwrap().report
        })
    });
}

#[test]
fn sort_is_engine_invariant() {
    let n = 64usize;
    let input = random_words(n, 33, 1_000_000);
    assert_engines_agree("sort", |d, par| {
        let m = Machine::hmm(d, W, L, n, n / d).with_parallelism(par);
        observe(m, |m| run_sort_hmm(m, &input, 32).unwrap().report)
    });
}

/// Traces must merge into the sequential event order too: dispatches,
/// completions and barrier releases in identical sequence.
#[test]
fn traces_are_identical_across_engines() {
    use hmm_machine::{abi, Asm, Engine, EngineConfig, LaunchSpec};

    // Shared staging, a DMM barrier, a global round-trip, a global
    // barrier — every trace-event kind fires.
    let mut a = Asm::new();
    a.st_shared(abi::LTID, 0, abi::GID);
    a.bar_dmm();
    a.ld_shared(hmm_machine::isa::Reg(16), abi::LTID, 0);
    a.st_global(abi::GID, 0, hmm_machine::isa::Reg(16));
    a.bar_global();
    a.ld_global(hmm_machine::isa::Reg(17), abi::GID, 0);
    a.halt();
    let program = a.finish();

    for d in [2usize, 4] {
        let run = |par: Parallelism| {
            let mut cfg = EngineConfig::hmm(d, 4, 8, 256, 64);
            cfg.trace = true;
            cfg.parallelism = par;
            let mut engine = Engine::new(cfg).unwrap();
            let spec = LaunchSpec::even(program.clone(), 8 * d, d, Vec::new());
            let report = engine.run(&spec).unwrap();
            (report, engine.take_trace().expect("trace was enabled"))
        };
        let (oracle_report, oracle_trace) = run(Parallelism::Sequential);
        for t in WORKER_COUNTS {
            let (report, trace) = run(Parallelism::Threads(t));
            assert_eq!(report, oracle_report, "trace test report (d={d}, t={t})");
            assert_eq!(
                trace.events(),
                oracle_trace.events(),
                "trace events diverged (d={d}, threads={t})"
            );
        }
    }
}
