//! Integration: algorithms written in the structured `hmm-lang` language
//! produce the same values and the same Θ-shaped times as the
//! hand-written ISA kernels in `hmm-algorithms`.

use hmm_algorithms::contiguous::run_copy;
use hmm_algorithms::sum::run_sum_hmm;
use hmm_core::{Kernel, LaunchShape, Machine};
use hmm_lang::prelude::*;
use hmm_workloads::random_words;

/// Theorem 7's phases 1–4 in hmm-lang (final reduce over DMM sums done
/// on DMM 0 through shared memory, like the ISA version's simple case
/// pd >= d and both powers of two).
fn theorem7_sum_lang(n: usize, threads: usize, dmms: usize) -> hmm_machine::Program {
    assert!(threads.is_multiple_of(dmms));
    let pd = threads / dmms;
    assert!(pd.is_power_of_two() && dmms.is_power_of_two() && pd >= dmms);
    let aux = n;
    let mut k = KernelBuilder::new();
    let i = k.var();
    let acc = k.var();
    let h = k.var();

    // Phase 1: strided column sums from global memory.
    k.set(acc, imm(0));
    k.for_strided(i, gid(), immu(n), p(), |k| {
        k.set(acc, add(v(acc), ld_global(v(i))));
    });
    // Phase 2: publish to shared memory.
    k.store(Space::Shared, ltid(), v(acc));
    k.bar_dmm();
    // Phase 3: pairwise tree in shared memory.
    let mut half = pd / 2;
    while half >= 1 {
        k.if_(lt(ltid(), immu(half)), |k| {
            k.store(
                Space::Shared,
                ltid(),
                add(ld_shared(ltid()), ld_shared(add(ltid(), immu(half)))),
            );
        });
        k.bar_dmm();
        half /= 2;
    }
    // Phase 4: DMM sums to global; one global barrier.
    k.if_(eq(ltid(), imm(0)), |k| {
        k.store(Space::Global, add(dmm(), immu(aux)), ld_shared(imm(0)));
    });
    k.bar_global();
    // Phase 5 (DMM 0): stage the d sums into shared, tree-reduce them.
    k.if_(eq(dmm(), imm(0)), |k| {
        k.if_(lt(ltid(), immu(dmms)), |k| {
            k.store(Space::Shared, ltid(), ld_global(add(ltid(), immu(aux))));
        });
        k.bar_dmm();
        let mut half = dmms / 2;
        while half >= 1 {
            k.if_(lt(ltid(), immu(half)), |k| {
                k.store(
                    Space::Shared,
                    ltid(),
                    add(ld_shared(ltid()), ld_shared(add(ltid(), immu(half)))),
                );
            });
            k.bar_dmm();
            half /= 2;
        }
        k.if_(eq(ltid(), imm(0)), |k| {
            k.store(Space::Global, immu(aux), ld_shared(imm(0)));
        });
        k.set(h, imm(0)); // keep `h` used in all paths
    });
    k.compile().expect("fits register file")
}

#[test]
fn lang_theorem7_matches_isa_theorem7() {
    let n = 1 << 12;
    let (d, w, l, p) = (8usize, 8usize, 64usize, 512usize);
    let input = random_words(n, 42, 500);
    let expect: i64 = input.iter().sum();

    // hmm-lang version.
    let program = theorem7_sum_lang(n, p, d);
    let mut m = Machine::hmm(d, w, l, n + 16, (p / d).max(d));
    m.load_global(0, &input);
    let report = m
        .launch(&Kernel::new("sum-lang-t7", program), LaunchShape::Even(p))
        .unwrap();
    assert_eq!(m.global()[n], expect);

    // Hand-written ISA version.
    let mut m2 = Machine::hmm(d, w, l, n + 16, (p / d).next_power_of_two());
    let isa = run_sum_hmm(&mut m2, &input, p).unwrap();
    assert_eq!(isa.value, expect);

    // Same asymptotic behaviour: within 2x of each other.
    let (a, b) = (report.time as f64, isa.report.time as f64);
    assert!(
        (a / b) < 2.0 && (b / a) < 2.0,
        "lang {a} vs isa {b} time units"
    );
}

#[test]
fn lang_copy_matches_isa_copy() {
    let n = 1 << 10;
    let (w, lat, threads) = (8usize, 32usize, 128usize);
    let input = random_words(n, 7, 500);

    // hmm-lang contiguous copy.
    let mut k = KernelBuilder::new();
    let i = k.var();
    k.for_strided(i, gid(), immu(n), p(), |k| {
        k.store(Space::Global, add(v(i), immu(n)), ld_global(v(i)));
    });
    let program = k.compile().unwrap();
    let mut m = Machine::umm(w, lat, 2 * n);
    m.load_global(0, &input);
    let lang_rep = m
        .launch(
            &Kernel::new("copy-lang", program),
            LaunchShape::Even(threads),
        )
        .unwrap();
    assert_eq!(&m.global()[n..2 * n], &input[..]);

    // ISA version.
    let mut m2 = Machine::umm(w, lat, 2 * n);
    let isa_rep = run_copy(&mut m2, &input, threads).unwrap();
    assert_eq!(&m2.global()[n..2 * n], &input[..]);

    let (a, b) = (lang_rep.time as f64, isa_rep.time as f64);
    assert!(
        (a / b) < 1.5 && (b / a) < 1.5,
        "lang {a} vs isa {b} time units"
    );
    // Identical memory traffic: same number of requests.
    assert_eq!(lang_rep.global.requests, isa_rep.global.requests);
}
