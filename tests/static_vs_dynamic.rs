//! Validates the static analyzer against the simulator: the conflict
//! degrees `hmm-analysis` predicts from the program text must match (or
//! soundly bound) what the engine actually measures, and the static race
//! detector must agree with the engine's debug-build dynamic checker.

use hmm_algorithms::patterns::{figure1_kernel, run_figure1, transpose_kernel, Figure1};
use hmm_analysis::{analyze, AnalysisConfig, Degree};
use hmm_core::{Kernel, LaunchShape, Machine};
use hmm_machine::isa::Space;
use hmm_machine::Program;

/// Launch `program` on `machine` with `p` threads and return the report.
fn measure(machine: &mut Machine, program: Program, p: usize) -> hmm_machine::SimReport {
    machine
        .launch(&Kernel::new("probe", program), LaunchShape::Even(p))
        .unwrap()
}

/// The Figure 1 table, both ways: the analyzer must predict each cell
/// *exactly*, and the simulator must measure the same number.
#[test]
fn figure1_predictions_are_exact_and_match_measurement() {
    let (w, l, m, p) = (4usize, 4usize, 8usize, 8usize);
    for pattern in Figure1::ALL {
        let program = figure1_kernel(pattern, m);

        let mut dmm = Machine::dmm(w, l, m * m + m);
        let measured = run_figure1(&mut dmm, pattern, m, p)
            .unwrap()
            .global
            .max_slots_per_transaction;
        let a = analyze(&program, &AnalysisConfig::dmm(w).with_launch(p as i64, 1));
        assert!(!a.has_errors(), "{}: {}", pattern.name(), a.render());
        let predicted = a.predicted_max_slots(Space::Global).unwrap();
        assert!(predicted.is_exact(), "{} on DMM", pattern.name());
        assert_eq!(predicted.max as u64, measured, "{} on DMM", pattern.name());

        let mut umm = Machine::umm(w, l, m * m + m);
        let measured = run_figure1(&mut umm, pattern, m, p)
            .unwrap()
            .global
            .max_slots_per_transaction;
        let a = analyze(&program, &AnalysisConfig::umm(w).with_launch(p as i64, 1));
        let predicted = a.predicted_max_slots(Space::Global).unwrap();
        assert!(predicted.is_exact(), "{} on UMM", pattern.name());
        assert_eq!(predicted.max as u64, measured, "{} on UMM", pattern.name());
    }
}

/// Transpose reads rows and writes columns. The address forms pass
/// through `Div`/`Rem`, which the affine domain cannot track, so the
/// analyzer must *decline* to predict (no false numbers) while still
/// reporting the kernel clean; the measurement itself confirms the
/// uncoalesced write.
#[test]
fn transpose_is_clean_but_unpredictable_and_measures_w_groups() {
    let (w, l, m) = (4usize, 4usize, 8usize);
    let program = transpose_kernel(0, m * m, m);
    let a = analyze(
        &program,
        &AnalysisConfig::umm(w).with_launch((m * m) as i64, 1),
    );
    assert!(!a.has_errors(), "{}", a.render());
    assert_eq!(a.predicted_max_slots(Space::Global), None);

    let mut umm = Machine::umm(w, l, 2 * m * m);
    let r = measure(&mut umm, program, m * m);
    assert_eq!(r.global.max_slots_per_transaction, w as u64);
}

/// Contiguous grid-stride access (Lemma 1): stride `p` with `w | p`
/// keeps the address `ltid`-affine through every loop iteration, so the
/// prediction stays exact across machines.
#[test]
fn contiguous_access_prediction_is_exact() {
    let (w, l, n, p) = (8usize, 8usize, 256usize, 32usize);
    for mode in [
        hmm_algorithms::contiguous::AccessMode::Read,
        hmm_algorithms::contiguous::AccessMode::Write,
    ] {
        let program = hmm_algorithms::contiguous::access_kernel(0, n, mode);
        let mut umm = Machine::umm(w, l, n);
        let measured = measure(&mut umm, program.clone(), p)
            .global
            .max_slots_per_transaction;
        let a = analyze(&program, &AnalysisConfig::umm(w).with_launch(p as i64, 1));
        assert!(!a.has_errors(), "{}", a.render());
        let predicted = a.predicted_max_slots(Space::Global).unwrap();
        assert!(predicted.is_exact(), "{mode:?}");
        assert_eq!(predicted.max as u64, measured, "{mode:?}");
    }
}

/// The paper kernels (sum, convolution, prefix sums — single-memory and
/// HMM forms): wherever the analyzer commits to a degree range, the
/// measured worst transaction must fall inside it, and no kernel may
/// trip an error diagnostic.
#[test]
fn paper_kernel_predictions_bound_measurement() {
    let (w, l, d) = (4usize, 8usize, 4usize);
    let n = 256usize;
    let k = 8usize;
    let p = 32usize;
    let n2 = n.next_power_of_two();
    let input = hmm_workloads::random_words(n, 7, 1000);
    let av = hmm_workloads::random_words(k, 7, 50);
    let bv = hmm_workloads::random_words(n + k - 1, 8, 50);

    // (name, program, machine, measured report)
    let mut cases: Vec<(&str, Program, AnalysisConfig, hmm_machine::SimReport)> = Vec::new();

    {
        let mut m = Machine::umm(w, l, n2);
        let run = hmm_algorithms::sum::run_sum_dmm_umm(&mut m, &input, p).unwrap();
        cases.push((
            "sum-umm",
            hmm_algorithms::sum::dmm_umm::sum_kernel(0, n2),
            AnalysisConfig::umm(w).with_launch(p as i64, 1),
            run.report,
        ));
    }
    {
        let mut m = Machine::hmm(d, w, l, n + 2 * d.next_power_of_two() + 8, 64);
        let run = hmm_algorithms::sum::run_sum_hmm(&mut m, &input, p).unwrap();
        cases.push((
            "sum-hmm",
            hmm_algorithms::sum::hmm_all::sum_kernel(n, p, d, n),
            AnalysisConfig::hmm(w, d).with_launch(p as i64, d),
            run.report,
        ));
    }
    {
        let mut m = Machine::umm(w, l, 2 * (n + 2 * k));
        let run = hmm_algorithms::convolution::run_conv_dmm_umm(&mut m, &av, &bv, p).unwrap();
        let layout = hmm_algorithms::convolution::dmm_umm::Layout::new(n, k);
        cases.push((
            "conv-umm",
            hmm_algorithms::convolution::dmm_umm::conv_kernel_strided(layout),
            AnalysisConfig::umm(w).with_launch(p as i64, 1),
            run.report,
        ));
    }
    {
        let m_slice = n.div_ceil(d);
        let shared = hmm_algorithms::convolution::hmm::shared_words(m_slice, k) + 8;
        let mut m = Machine::hmm(d, w, l, 2 * (n + 2 * k), shared);
        let run = hmm_algorithms::convolution::run_conv_hmm(&mut m, &av, &bv, p).unwrap();
        cases.push((
            "conv-hmm",
            hmm_algorithms::convolution::hmm::conv_kernel_hmm(n, k, d),
            AnalysisConfig::hmm(w, d).with_launch(p as i64, d),
            run.report,
        ));
    }
    {
        let mut m = Machine::umm(w, l, 3 * n2);
        let run = hmm_algorithms::prefix::run_prefix_dmm_umm(&mut m, &input, p).unwrap();
        cases.push((
            "prefix-umm",
            hmm_algorithms::prefix::prefix_kernel_dmm_umm(n2),
            AnalysisConfig::umm(w).with_launch(p as i64, 1),
            run.report,
        ));
    }
    {
        let chunk = n.div_ceil(d);
        let shared = hmm_algorithms::prefix::prefix_shared_words(chunk, p / d, d);
        let mut m = Machine::hmm(d, w, l, 2 * n + d + 8, shared);
        let run = hmm_algorithms::prefix::run_prefix_hmm(&mut m, &input, p).unwrap();
        cases.push((
            "prefix-hmm",
            hmm_algorithms::prefix::prefix_kernel_hmm(n, p, d),
            AnalysisConfig::hmm(w, d).with_launch(p as i64, d),
            run.report,
        ));
    }

    for (name, program, config, report) in cases {
        let a = analyze(&program, &config);
        assert!(!a.has_errors(), "{name}: {}", a.render());
        check_bound(
            name,
            "global",
            a.predicted_max_slots(Space::Global),
            report.global.max_slots_per_transaction,
        );
        check_bound(
            name,
            "shared",
            a.predicted_max_slots(Space::Shared),
            report.shared.max_slots_per_transaction,
        );
    }
}

/// When the analyzer commits to a range, the measurement must fall in it.
fn check_bound(name: &str, space: &str, predicted: Option<Degree>, measured: u64) {
    if let Some(deg) = predicted {
        assert!(
            measured <= deg.max as u64,
            "{name}/{space}: measured {measured} exceeds predicted max {}",
            deg.max
        );
    }
}

/// The engine's debug-build dynamic race checker must corroborate the
/// static verdicts: the racy example really races at runtime, and its
/// fixed form really does not.
#[cfg(debug_assertions)]
#[test]
fn dynamic_race_checker_corroborates_static_verdicts() {
    let (d, w, l, p) = (2usize, 4usize, 4usize, 16usize);
    let config = AnalysisConfig::hmm(w, d).with_launch(p as i64, d);

    let racy = hmm_analysis::examples::racy_kernel();
    assert!(analyze(&racy, &config).has_errors());
    let mut m = Machine::hmm(d, w, l, 64, 8);
    let report = measure(&mut m, racy, p);
    assert!(
        report.shared_races > 0,
        "static says race, dynamic checker saw none"
    );

    let fixed = hmm_analysis::examples::racy_kernel_fixed();
    assert!(!analyze(&fixed, &config).has_errors());
    let mut m = Machine::hmm(d, w, l, 64, 8);
    let report = measure(&mut m, fixed, p);
    assert_eq!(
        report.shared_races, 0,
        "static says clean, dynamic checker disagrees"
    );
}
