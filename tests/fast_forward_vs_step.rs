//! Differential test: the event-driven clock must be **semantically
//! invisible**.
//!
//! Every paper kernel (sum, convolution, prefix sums, the Figure 1
//! patterns, transpose, matmul, bitonic sort) runs with fast-forwarding
//! on and off, under the sequential driver and the threaded driver at 4
//! workers. The full [`SimReport`], the dynamic race log, the final
//! global memory, the (capacity-bounded) event trace and the
//! cycle-accounting [`LaunchProfile`]s must match exactly — the only
//! permitted difference is the `skipped_units` diagnostic, which must
//! be zero whenever fast-forwarding is off and identical across worker
//! counts whenever it is on.

use hmm_algorithms::convolution::hmm::shared_words;
use hmm_algorithms::convolution::run_conv_hmm;
use hmm_algorithms::matmul::{matmul_shared_words, run_matmul_hmm};
use hmm_algorithms::patterns::{run_figure1, run_transpose, Figure1};
use hmm_algorithms::prefix::{prefix_shared_words, run_prefix_hmm};
use hmm_algorithms::sort::run_sort_hmm;
use hmm_algorithms::sum::run_sum_hmm;
use hmm_core::{Machine, Parallelism};
use hmm_machine::profile::LaunchProfile;
use hmm_machine::{DynamicRace, SimReport, TraceEvent, Word};
use hmm_workloads::random_words;

const W: usize = 4;
/// High latency so latency-bound stretches actually occur.
const L: usize = 32;
const DMM_COUNTS: [usize; 3] = [1, 2, 4];
/// Bound the trace so the drop-at-capacity path is exercised too.
const TRACE_CAP: usize = 512;

/// Everything observable about one simulation run, with the
/// clock-dependent diagnostic normalised out.
#[derive(Debug, PartialEq)]
struct Observed {
    report: SimReport,
    races: Vec<DynamicRace>,
    global: Vec<Word>,
    trace: Vec<TraceEvent>,
    profiles: Vec<LaunchProfile>,
}

/// Run `run` on `m` with tracing (bounded) and profiling enabled.
/// Returns the skipped-unit count alongside the normalised observation.
fn observe(mut m: Machine, run: impl FnOnce(&mut Machine) -> SimReport) -> (u64, Observed) {
    m.set_trace(true);
    m.engine_mut().set_trace_capacity(Some(TRACE_CAP));
    m.set_profiling(true);
    let mut report = run(&mut m);
    let skipped = report.skipped_units;
    report.skipped_units = 0;
    let obs = Observed {
        races: m.engine_mut().take_races(),
        global: m.global().to_vec(),
        trace: m.take_trace().expect("trace was enabled").events().to_vec(),
        profiles: m.take_profiles(),
        report,
    };
    (skipped, obs)
}

/// Run `launch` at every DMM count with the clock in both modes under
/// both drivers, and require identical observations throughout.
fn assert_clock_invisible(
    name: &str,
    launch: impl Fn(usize, bool, Parallelism) -> (u64, Observed),
) {
    for &d in &DMM_COUNTS {
        let (skipped_seq, oracle) = launch(d, true, Parallelism::Sequential);
        let (stepped_seq, walked) = launch(d, false, Parallelism::Sequential);
        assert_eq!(
            stepped_seq, 0,
            "{name}: skipped_units must be 0 with fast-forward off (d={d})"
        );
        assert_eq!(
            walked, oracle,
            "{name}: unit-stepped run diverged from fast-forwarded run (d={d})"
        );
        let (skipped_par, par_on) = launch(d, true, Parallelism::Threads(4));
        let (stepped_par, par_off) = launch(d, false, Parallelism::Threads(4));
        assert_eq!(par_on, oracle, "{name}: parallel ff-on diverged (d={d})");
        assert_eq!(par_off, oracle, "{name}: parallel ff-off diverged (d={d})");
        assert_eq!(stepped_par, 0, "{name}: parallel ff-off skipped (d={d})");
        assert_eq!(
            skipped_par, skipped_seq,
            "{name}: skipped_units depends on the worker count (d={d})"
        );
    }
}

#[test]
fn sum_is_clock_invariant() {
    let input = random_words(512, 11, 1000);
    assert_clock_invisible("sum", |d, ff, par| {
        let p = 16 * d;
        let shared = (p / d).next_power_of_two().max(8);
        let m = Machine::hmm(d, W, L, 512 + 2 * d.next_power_of_two() + 8, shared)
            .with_parallelism(par)
            .with_fast_forward(ff);
        observe(m, |m| run_sum_hmm(m, &input, p).unwrap().report)
    });
}

#[test]
fn convolution_is_clock_invariant() {
    let (n, k) = (256usize, 8usize);
    let a = random_words(k, 3, 50);
    let b = random_words(n + k - 1, 4, 50);
    assert_clock_invisible("conv", |d, ff, par| {
        let p = 8 * d;
        let shared = shared_words(n.div_ceil(d), k) + 8;
        let m = Machine::hmm(d, W, L, 2 * (n + 2 * k), shared)
            .with_parallelism(par)
            .with_fast_forward(ff);
        observe(m, |m| run_conv_hmm(m, &a, &b, p).unwrap().report)
    });
}

#[test]
fn prefix_is_clock_invariant() {
    let n = 256usize;
    let input = random_words(n, 17, 1000);
    assert_clock_invisible("prefix", |d, ff, par| {
        let p = 8 * d;
        let shared = prefix_shared_words(n.div_ceil(d), p / d, d) + 8;
        let m = Machine::hmm(d, W, L, 4 * n, shared)
            .with_parallelism(par)
            .with_fast_forward(ff);
        observe(m, |m| run_prefix_hmm(m, &input, p).unwrap().report)
    });
}

#[test]
fn figure1_patterns_are_clock_invariant() {
    let side = 16usize;
    for pattern in Figure1::ALL {
        assert_clock_invisible(pattern.name(), |d, ff, par| {
            let m = Machine::hmm(d, W, L, side * side, 16)
                .with_parallelism(par)
                .with_fast_forward(ff);
            observe(m, |m| run_figure1(m, pattern, side, side).unwrap())
        });
    }
}

#[test]
fn transpose_is_clock_invariant() {
    let side = 8usize;
    let a = random_words(side * side, 7, 100);
    assert_clock_invisible("transpose", |d, ff, par| {
        let mut m = Machine::hmm(d, W, L, 2 * side * side, 16)
            .with_parallelism(par)
            .with_fast_forward(ff);
        m.load_global(0, &a);
        observe(m, |m| run_transpose(m, 0, side * side, side).unwrap())
    });
}

#[test]
fn matmul_is_clock_invariant() {
    let (side, tw, p) = (8usize, 4usize, 16usize);
    let a = random_words(side * side, 21, 10);
    let b = random_words(side * side, 22, 10);
    assert_clock_invisible("matmul", |d, ff, par| {
        let shared = matmul_shared_words(side, d, tw);
        let m = Machine::hmm(d, W, L, 3 * side * side, shared)
            .with_parallelism(par)
            .with_fast_forward(ff);
        observe(m, |m| {
            run_matmul_hmm(m, &a, &b, side, tw, p).unwrap().report
        })
    });
}

#[test]
fn sort_is_clock_invariant() {
    let n = 64usize;
    let input = random_words(n, 33, 1_000_000);
    assert_clock_invisible("sort", |d, ff, par| {
        let m = Machine::hmm(d, W, L, n, n / d)
            .with_parallelism(par)
            .with_fast_forward(ff);
        observe(m, |m| run_sort_hmm(m, &input, 32).unwrap().report)
    });
}

/// A latency-bound kernel (one warp, global round trips at l = 64) must
/// actually skip: the clock jumps the idle stretch between a dispatch
/// and its completion, and the report says so.
#[test]
fn latency_bound_kernel_skips_and_reports_it() {
    use hmm_machine::{abi, isa::Reg, Asm, Engine, EngineConfig, LaunchSpec};

    let mut a = Asm::new();
    a.ld_global(Reg(16), abi::GID, 0);
    a.st_global(abi::GID, 64, Reg(16));
    a.bar_global();
    a.ld_global(Reg(17), abi::GID, 64);
    a.halt();
    let program = a.finish();

    let run = |ff: bool| {
        let mut cfg = EngineConfig::hmm(1, 4, 64, 256, 16);
        cfg.fast_forward = ff;
        let mut engine = Engine::new(cfg).unwrap();
        let spec = LaunchSpec::even(program.clone(), 4, 1, Vec::new());
        engine.run(&spec).unwrap()
    };
    let fast = run(true);
    let slow = run(false);
    assert!(
        fast.skipped_units > 0,
        "a one-warp l=64 kernel must have skippable idle stretches"
    );
    assert_eq!(slow.skipped_units, 0);
    let mut fast_n = fast.clone();
    fast_n.skipped_units = 0;
    assert_eq!(fast_n, slow, "reports differ beyond skipped_units");
}
