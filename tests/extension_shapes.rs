//! Integration: the extension algorithms (prefix-sums, offline
//! permutation) reproduce their claimed complexity shapes, in the same
//! envelope-fit style as the Table I tests.

use hmm_algorithms::permutation::{
    run_permutation_naive, run_permutation_scheduled, transpose_perm,
};
use hmm_algorithms::prefix::{prefix_shared_words, run_prefix_dmm_umm, run_prefix_hmm};
use hmm_core::Machine;
use hmm_theory::{envelope, lg};
use hmm_workloads::random_words;

/// Reference [17]'s bound for the single-memory scan:
/// `n/w + nl/p + l·log n`.
fn prefix_dmm_umm_shape(n: usize, p: usize, w: usize, l: usize) -> f64 {
    let (nf, pf, wf, lf) = (n as f64, p as f64, w as f64, l as f64);
    nf / wf + nf * lf / pf + lf * lg(n)
}

/// Our HMM scan's bound: `n/w + nl/p + n/p + l + log p + d`.
fn prefix_hmm_shape(n: usize, p: usize, w: usize, l: usize, d: usize) -> f64 {
    let (nf, pf, wf, lf) = (n as f64, p as f64, w as f64, l as f64);
    nf / wf + nf * lf / pf + nf / pf + lf + lg(p) + d as f64
}

#[test]
fn prefix_dmm_umm_matches_its_bound() {
    let mut pairs = Vec::new();
    for &n in &[1usize << 10, 1 << 12] {
        for &p in &[64usize, 256, 1024] {
            for &l in &[4usize, 32, 128] {
                let w = 16;
                let input = random_words(n, 1, 50);
                let mut m = Machine::umm(w, l, 3 * n);
                let run = run_prefix_dmm_umm(&mut m, &input, p).unwrap();
                pairs.push((run.report.time as f64, prefix_dmm_umm_shape(n, p, w, l)));
            }
        }
    }
    let fit = envelope::fit(&pairs);
    assert!(
        fit.matches_within(10.0),
        "prefix DMM/UMM spread {:.2} (band {:.2}..{:.2})",
        fit.spread,
        fit.min_ratio,
        fit.max_ratio
    );
}

#[test]
fn prefix_hmm_matches_its_bound() {
    let mut pairs = Vec::new();
    for &n in &[1usize << 10, 1 << 12] {
        for &(d, p) in &[(4usize, 128usize), (8, 512)] {
            for &l in &[4usize, 32, 128] {
                let w = 16;
                let input = random_words(n, 2, 50);
                let chunk = n.div_ceil(d);
                let shared = prefix_shared_words(chunk, p / d, d);
                let mut m = Machine::hmm(d, w, l, 2 * n + d + 8, shared);
                let run = run_prefix_hmm(&mut m, &input, p).unwrap();
                pairs.push((run.report.time as f64, prefix_hmm_shape(n, p, w, l, d)));
            }
        }
    }
    let fit = envelope::fit(&pairs);
    assert!(
        fit.matches_within(10.0),
        "prefix HMM spread {:.2} (band {:.2}..{:.2})",
        fit.spread,
        fit.min_ratio,
        fit.max_ratio
    );
}

/// The scheduled permutation is bandwidth-bound like contiguous access:
/// `O(n/w + nl/p + l)` — while the naive transpose hits `w`-way
/// conflicts, costing about `w`× more pipeline slots.
#[test]
fn scheduled_permutation_is_contiguous_shaped() {
    let w = 8;
    let mut pairs = Vec::new();
    for &m_side in &[16usize, 32] {
        for &p in &[64usize, 256] {
            for &l in &[8usize, 64] {
                let n = m_side * m_side;
                let perm = transpose_perm(m_side);
                let input = random_words(n, 3, 50);
                let rounds = n.div_ceil(w) + 1;
                let mut m = Machine::dmm(w, l, 2 * n + 2 * rounds * w + 64);
                let run = run_permutation_scheduled(&mut m, &input, &perm, p).unwrap();
                // Shape: moves cost ~4n/w slots (two table reads, a data
                // read and a write per element) + latency terms.
                let (nf, pf, wf, lf) = (n as f64, p as f64, w as f64, l as f64);
                let shape = nf / wf + nf * lf / pf + lf;
                pairs.push((run.report.time as f64, shape));
            }
        }
    }
    let fit = envelope::fit(&pairs);
    assert!(
        fit.matches_within(10.0),
        "scheduled permutation spread {:.2} (band {:.2}..{:.2})",
        fit.spread,
        fit.min_ratio,
        fit.max_ratio
    );
}

/// Slot-level comparison: on the transpose, the naive kernel's *data*
/// traffic needs ~w times the slots of the scheduled kernel's.
#[test]
fn naive_transpose_pays_w_way_conflicts() {
    let w = 8;
    let m_side = 32;
    let n = m_side * m_side;
    let perm = transpose_perm(m_side);
    let input = random_words(n, 4, 50);
    let p = 128;
    let l = 8;

    let rounds = n.div_ceil(w) + 1;
    let mut dmm = Machine::dmm(w, l, 2 * n + 2 * rounds * w + 64);
    let sched = run_permutation_scheduled(&mut dmm, &input, &perm, p).unwrap();
    let mut dmm2 = Machine::dmm(w, l, 3 * n + 16);
    let naive = run_permutation_naive(&mut dmm2, &input, &perm, p).unwrap();

    assert_eq!(sched.value, naive.value);
    assert_eq!(naive.report.global.max_slots_per_transaction, w as u64);
    assert_eq!(sched.report.global.max_slots_per_transaction, 1);
    // Naive traffic: 3n requests; n of them (the writes) serialise w-way,
    // so slots ~= 2n/w + n. Scheduled: 4n requests, all conflict-free.
    assert!(
        naive.report.global.slots > 2 * sched.report.global.slots,
        "naive {} slots vs scheduled {}",
        naive.report.global.slots,
        sched.report.global.slots
    );
}
