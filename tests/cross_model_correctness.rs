//! Randomised correctness: every parallel implementation of the sum
//! and convolution computes exactly the sequential reference, on all
//! machine shapes — random inputs, random problem/machine parameters,
//! seeded so every run checks the same cases.

use hmm_algorithms::convolution::hmm::shared_words;
use hmm_algorithms::convolution::{run_conv_blocked, run_conv_dmm_umm, run_conv_hmm};
use hmm_algorithms::reference;
use hmm_algorithms::sum::{run_sum_dmm_umm, run_sum_hmm, run_sum_hmm_single_dmm};
use hmm_core::Machine;
use hmm_machine::Word;
use hmm_pram::algorithms as pram_algos;
use hmm_util::Rng;

fn random_vec(rng: &mut Rng, len: usize) -> Vec<Word> {
    (0..len).map(|_| rng.int_in(-1000, 999)).collect()
}

#[test]
fn sum_agrees_everywhere() {
    let mut rng = Rng::new(0x5D17);
    for _ in 0..24 {
        let n = 1 + rng.usize_below(399);
        let input = random_vec(&mut rng, n);
        let w = 1 << (1 + rng.usize_below(3));
        let d = 1 << rng.usize_below(3);
        let p = ((1 << rng.usize_below(8)) * d).min(512);
        let l = 1 + rng.usize_below(23);
        let expect = reference::sum(&input).value;
        let cap = n.next_power_of_two().max(16) + 64;

        let mut dmm = Machine::dmm(w, l, cap);
        assert_eq!(run_sum_dmm_umm(&mut dmm, &input, p).unwrap().value, expect);

        let mut umm = Machine::umm(w, l, cap);
        assert_eq!(run_sum_dmm_umm(&mut umm, &input, p).unwrap().value, expect);

        let mut hmm = Machine::hmm(d, w, l, cap, (p / d).next_power_of_two().max(8));
        assert_eq!(run_sum_hmm(&mut hmm, &input, p).unwrap().value, expect);

        let q = (w * l).min(128);
        let mut hmm1 = Machine::hmm(d, w, l, n + q.next_power_of_two() + 8, 8);
        assert_eq!(
            run_sum_hmm_single_dmm(&mut hmm1, &input, q).unwrap().value,
            expect
        );

        let (pram_val, _) = pram_algos::run_sum(&input, p).unwrap();
        assert_eq!(pram_val, expect);
    }
}

#[test]
fn convolution_agrees_everywhere() {
    let mut rng = Rng::new(0xC04F);
    for _ in 0..24 {
        let k = 1 + rng.usize_below(11);
        let n = 1 + rng.usize_below(159);
        let seed = rng.below(1000);
        let a = hmm_workloads::random_words(k, seed, 100);
        let b = hmm_workloads::random_words(n + k - 1, seed + 1, 100);
        let w = 1 << (1 + rng.usize_below(3));
        let d = 1 << rng.usize_below(3);
        let p = ((1 << rng.usize_below(7)) * d).min(256);
        let l = 1 + rng.usize_below(15);
        let expect = reference::convolution(&a, &b).value;
        let cap = 2 * (n + 2 * k) + 64;

        let mut umm = Machine::umm(w, l, cap);
        assert_eq!(run_conv_dmm_umm(&mut umm, &a, &b, p).unwrap().value, expect);

        let mut dmm = Machine::dmm(w, l, cap);
        assert_eq!(run_conv_dmm_umm(&mut dmm, &a, &b, p).unwrap().value, expect);

        let m_slice = n.div_ceil(d);
        let mut hmm = Machine::hmm(d, w, l, cap, shared_words(m_slice, k) + 8);
        assert_eq!(run_conv_hmm(&mut hmm, &a, &b, p).unwrap().value, expect);

        let q = k.min(3);
        let mut blocked = Machine::umm(w, l, cap + n * q.next_power_of_two());
        assert_eq!(
            run_conv_blocked(&mut blocked, &a, &b, q).unwrap().value,
            expect
        );

        let (pram_val, _) = pram_algos::run_convolution(&a, &b, p).unwrap();
        assert_eq!(pram_val, expect);
    }
}
