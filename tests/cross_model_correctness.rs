//! Property-based correctness: every parallel implementation of the sum
//! and convolution computes exactly the sequential reference, on all
//! machine shapes — random inputs, random problem/machine parameters.

use hmm_algorithms::convolution::hmm::shared_words;
use hmm_algorithms::convolution::{run_conv_blocked, run_conv_dmm_umm, run_conv_hmm};
use hmm_algorithms::reference;
use hmm_algorithms::sum::{run_sum_dmm_umm, run_sum_hmm, run_sum_hmm_single_dmm};
use hmm_core::Machine;
use hmm_machine::Word;
use hmm_pram::algorithms as pram_algos;
use proptest::prelude::*;

fn word_vec(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Word>> {
    prop::collection::vec(-1000i64..1000, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sum_agrees_everywhere(
        input in word_vec(1..400),
        p_exp in 0usize..8,
        w_exp in 1usize..4,
        l in 1usize..24,
        d_exp in 0usize..3,
    ) {
        let n = input.len();
        let w = 1 << w_exp;
        let d = 1 << d_exp;
        let p = ((1 << p_exp) * d).min(512);
        let expect = reference::sum(&input).value;
        let cap = n.next_power_of_two().max(16) + 64;

        let mut dmm = Machine::dmm(w, l, cap);
        prop_assert_eq!(run_sum_dmm_umm(&mut dmm, &input, p).unwrap().value, expect);

        let mut umm = Machine::umm(w, l, cap);
        prop_assert_eq!(run_sum_dmm_umm(&mut umm, &input, p).unwrap().value, expect);

        let mut hmm = Machine::hmm(d, w, l, cap, (p / d).next_power_of_two().max(8));
        prop_assert_eq!(run_sum_hmm(&mut hmm, &input, p).unwrap().value, expect);

        let q = (w * l).min(128);
        let mut hmm1 = Machine::hmm(d, w, l, n + q.next_power_of_two() + 8, 8);
        prop_assert_eq!(
            run_sum_hmm_single_dmm(&mut hmm1, &input, q).unwrap().value,
            expect
        );

        let (pram_val, _) = pram_algos::run_sum(&input, p).unwrap();
        prop_assert_eq!(pram_val, expect);
    }

    #[test]
    fn convolution_agrees_everywhere(
        k in 1usize..12,
        n in 1usize..160,
        seed in 0u64..1000,
        p_exp in 0usize..7,
        w_exp in 1usize..4,
        l in 1usize..16,
        d_exp in 0usize..3,
    ) {
        let a = hmm_workloads::random_words(k, seed, 100);
        let b = hmm_workloads::random_words(n + k - 1, seed + 1, 100);
        let w = 1 << w_exp;
        let d = 1 << d_exp;
        let p = ((1 << p_exp) * d).min(256);
        let expect = reference::convolution(&a, &b).value;
        let cap = 2 * (n + 2 * k) + 64;

        let mut umm = Machine::umm(w, l, cap);
        prop_assert_eq!(run_conv_dmm_umm(&mut umm, &a, &b, p).unwrap().value, expect.clone());

        let mut dmm = Machine::dmm(w, l, cap);
        prop_assert_eq!(run_conv_dmm_umm(&mut dmm, &a, &b, p).unwrap().value, expect.clone());

        let m_slice = n.div_ceil(d);
        let mut hmm = Machine::hmm(d, w, l, cap, shared_words(m_slice, k) + 8);
        prop_assert_eq!(run_conv_hmm(&mut hmm, &a, &b, p).unwrap().value, expect.clone());

        let q = k.min(3);
        let mut blocked = Machine::umm(w, l, cap + n * q.next_power_of_two());
        prop_assert_eq!(run_conv_blocked(&mut blocked, &a, &b, q).unwrap().value, expect.clone());

        let (pram_val, _) = pram_algos::run_convolution(&a, &b, p).unwrap();
        prop_assert_eq!(pram_val, expect);
    }
}
